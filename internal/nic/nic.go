// Package nic models the network interface of §V: an embedded processor
// (PPC440-class, Table III) running the firmware loop of §V-C over the
// MPI queue structures, with optional associative list processing units
// (ALPUs) for the posted receive queue and the unexpected message queue,
// wired exactly as in Fig. 1: header copies flow to the ALPU in hardware,
// and the processor interacts with it only through command/result FIFOs
// across the 20 ns local bus.
//
// The same firmware implements both evaluated configurations:
//
//   - baseline: linear traversal of the queues on the NIC processor, each
//     entry charged through the cache/DRAM model;
//   - ALPU: the §IV software interface — shadow list, not-in-ALPU pointer,
//     batched inserts behind START/STOP INSERT, result draining, and
//     software search of only the overflow portion on MATCH FAILURE.
package nic

import (
	"fmt"
	"log/slog"

	"alpusim/internal/alpu"
	"alpusim/internal/cache"
	"alpusim/internal/dma"
	"alpusim/internal/dram"
	"alpusim/internal/match"
	"alpusim/internal/memsys"
	"alpusim/internal/network"
	"alpusim/internal/params"
	"alpusim/internal/sim"
	"alpusim/internal/telemetry"
	"alpusim/internal/trace"
)

// ReqKind distinguishes host requests.
type ReqKind int

const (
	// ReqSend asks the NIC to transmit a message.
	ReqSend ReqKind = iota
	// ReqRecv posts a receive.
	ReqRecv
	// ReqProbe checks the unexpected queue for a matching message without
	// consuming it (MPI_Iprobe). Non-consuming lookups cannot use the
	// ALPU — its matches always delete (§III-B) — so probes always search
	// the software copy; see DESIGN.md.
	ReqProbe
)

// HostRequest is one descriptor written by the host library to the NIC.
type HostRequest struct {
	Kind ReqKind
	ID   uint64

	// Send fields.
	Dst  int
	Hdr  match.Header
	Size int

	// Recv fields.
	Recv     match.Recv
	RecvSize int
}

// Config selects a NIC build point.
type Config struct {
	ID int

	// UseALPU enables the two matching units.
	UseALPU bool
	// Cells is the ALPU capacity (the paper evaluates 128 and 256).
	Cells int
	// Threshold is the §VI-B software heuristic: the ALPU is not engaged
	// until the queue reaches this length.
	Threshold int
	// InsertBatchMax caps inserts per START/STOP INSERT episode
	// (0 = fill all free cells); the abl-insertbatch ablation sets 1.
	InsertBatchMax int
	// ALPUConfig optionally overrides the device configuration (geometry,
	// pipeline). Variant and cells are filled in per unit.
	ALPUConfig *alpu.Config
	// PerCycleALPU forces the reference per-cycle device stepping model
	// instead of the batched fast path (see alpu.Config.PerCycle). The two
	// are bit-identical in observable behaviour; the equivalence oracle in
	// internal/bench runs both.
	PerCycleALPU bool
	// MatchShards, when > 1 with UseALPU, replaces the single
	// posted-receive unit with a sharded matching fabric of that many ALPU
	// instances: posted receives hash by (context, source) across the
	// shards through a hot-entry dispatch cache, each shard pairs its
	// device with a hash-organised software overflow, and ANY_SOURCE
	// receives broadcast one copy per shard (fabric.go). The unexpected
	// queue keeps its single unit. Match outcomes are byte-identical to
	// every other configuration. Requires UseALPU; mutually exclusive with
	// UseHashList.
	MatchShards int

	// ALPUFaults, when active, attaches the device-level fault model to
	// both matching units (per-unit streams are derived from the seed, the
	// NIC id and the unit id, so every device in the world faults
	// independently and deterministically) and arms the firmware's
	// strike/resync/failover recovery machinery (devfault.go).
	ALPUFaults *alpu.FaultModel
	// ShardFaults optionally overrides the device fault model for
	// individual fabric shards: ShardFaults[i], when non-nil and active,
	// replaces ALPUFaults for shard i's unit (the one-shard-dies failover
	// experiments). Entries beyond MatchShards are ignored.
	ShardFaults []*alpu.FaultModel
	// FwCrashProb is the per-pending-work-item probability of an injected
	// firmware crash at the loop top. The crashed firmware restarts after
	// FwRestartDelay and replays device state from the shadow queues.
	FwCrashProb float64
	// FwCrashSeed seeds the crash stream (0 = derived from ID).
	FwCrashSeed uint64
	// FaultStrikeLimit is the number of consecutive device faults after
	// which the firmware declares a unit dead and hot-fails-over to
	// software matching (0 = 5).
	FaultStrikeLimit int
	// FaultResultTimeout is the base response-wait budget when device
	// faults are configured (0 = 10µs); it doubles with each strike.
	FaultResultTimeout sim.Time
	// FaultRetryBase is the base re-engagement backoff after a strike
	// (0 = 20µs), exponential in the strike count, capped.
	FaultRetryBase sim.Time
	// FwRestartDelay is the modelled firmware reboot time (0 = 10µs).
	FwRestartDelay sim.Time

	// UseHashList switches the software queues to the hash organisation
	// of §II (the abl-hash ablation baseline). Mutually exclusive with
	// UseALPU in the evaluated configurations.
	UseHashList bool

	// CPUProfile overrides the NIC processor model (nil = the Table III
	// PPC440-class profile). params.ElanNIC() reproduces the §VI-B
	// Quadrics comparison point.
	CPUProfile *params.CPU

	// Reliable enables the link reliability engine (reliability.go): the
	// go-back-N protocol that restores the in-order, loss-free delivery
	// the matching queues assume when the network runs a fault model. The
	// MPI layer forces it on whenever faults are configured.
	Reliable bool
	// RelWindow is the go-back-N window: unacknowledged packets allowed in
	// flight per peer (0 = 64).
	RelWindow int
	// RelTimeout is the initial retransmit timeout (0 = derived from the
	// network's wire latency).
	RelTimeout sim.Time
	// MaxUnexpected bounds the unexpected queue under the reliability
	// protocol: an in-order EAGER/RTS that would grow it past the bound is
	// refused with a receiver-not-ready NACK instead of growing the queue
	// without limit (0 = unbounded).
	MaxUnexpected int
	// RxQDepth bounds the endpoint's Rx FIFO (0 = unbounded). A reliable
	// NIC refuses admission with RNR when it is full; a raw NIC drops the
	// packet (counted by the FIFO).
	RxQDepth int

	// Telemetry is the world's metrics registry. The NIC registers its
	// counters under "nic<ID>/..."; nil creates a private registry so the
	// accessors below always work (standalone NICs in tests).
	Telemetry *telemetry.Registry
	// Log, when non-nil, receives structured diagnostics (recoverable
	// protocol errors). The MPI layer passes a logger whose handler
	// stamps records with the simulated clock.
	Log *slog.Logger
	// ErrorHook, when set, observes every recoverable protocol error
	// after it has been counted — the MPI layer's flight-recorder dump
	// trigger. Called on the simulation goroutine.
	ErrorHook func(err error)
	// Tracer, when set, records firmware/ALPU/reliability activity as
	// trace events under pid ID.
	Tracer *telemetry.Tracer
	// Phases, when set, receives per-message pipeline stamps.
	Phases *telemetry.Phases
	// Causal, when set, receives per-message causal stamps and the
	// firmware's resync/failover time annotations (telemetry.Causal).
	Causal *telemetry.Causal
	// Series, when set, receives the NIC's time-series probes: queue
	// depths, FIFO occupancy, the go-back-N window, per-shard fabric
	// balance and the rolling match-latency p99, all sampled on the
	// owning engine's front-poll chain (telemetry.Sampler).
	Series *telemetry.Sampler
}

// Stats aggregates firmware activity for the benchmark reports.
type Stats struct {
	PacketsHandled   uint64
	HostReqsHandled  uint64
	EntriesTraversed uint64 // software queue entries examined
	PostedMatches    uint64
	Unexpected       uint64 // messages that joined the unexpected queue
	UnexpMatches     uint64
	ALPUPostedHits   uint64
	ALPUPostedMisses uint64
	ALPUUnexpHits    uint64
	ALPUUnexpMisses  uint64
	ALPUInserts      uint64
	ALPUPurges       uint64 // stale prefix copies purged after the §IV-C race
	InsertEpisodes   uint64
	Completions      uint64
}

// mirrorQueue pairs a software queue with its (optional) ALPU, the
// §IV-B "portion not yet entered" pointer, and the tag table that maps
// ALPU tags back to entries.
type mirrorQueue struct {
	name    string
	list    match.List
	hash    *match.HashList // non-nil when Config.UseHashList
	dev     *alpu.Device    // non-nil when Config.UseALPU
	inALPU  int             // length of the list prefix currently in the ALPU
	tags    map[uint32]*match.Entry
	nextTag uint32

	// Fabric-shard state (fabric.go): the hash-organised mirror of the
	// unloaded list suffix (over == list[inALPU:] while the device lives;
	// nil outside the fabric and after failover), the quarantine of tags
	// whose cells were invalidated while a response might still be in
	// flight, and the overflow promotion/demotion counters.
	over       *match.HashList
	stale      map[uint32]bool
	promotions uint64
	demotions  uint64

	// Instrumentation for the refs [8]/[9]-style queue studies: where
	// matches land and how long the queue gets. The histogram lives in
	// the telemetry registry ("nic<ID>/<name>/match_depth").
	depths  *telemetry.Histogram
	peakLen int
	// pending holds match results drained while awaiting an insert
	// acknowledge, each stamped with the not-in-ALPU pointer value at the
	// time it was read: a failure generated before an insert episode must
	// be resolved against the pre-episode list state (§IV-C/D race).
	pending []stashedResp

	// engaged is the §IV-C initialisation gate: until the firmware engages
	// the unit (first insert episode, after the Threshold heuristic
	// fires), duplicate-information delivery is disabled and probes do
	// not flow, so short queues avoid the ALPU interface penalty.
	engaged bool
	// probed tracks the correlation keys (packet seq / request id) of
	// probes that have been delivered to the unit and whose results are
	// still outstanding.
	probed map[uint64]bool

	// Device-fault recovery state (devfault.go).
	strikes    int      // consecutive unresolved device faults
	retryAt    sim.Time // insert episodes gated until this instant
	needResync bool     // mirror state suspect; resync at next safe point
	alpuDead   bool     // failed over: the hash shadow serves matching
}

// removeAt unlinks the entry at idx from the software list and keeps any
// stashed responses' not-in-ALPU pointers consistent: removing an entry
// below a stash-era bracket shifts every later entry down one slot, so
// the bracket must move with them or a later fallback search would start
// past the entry it is looking for.
func (q *mirrorQueue) removeAt(idx int) {
	q.list.RemoveAt(idx)
	for i := range q.pending {
		if q.pending[i].from > idx {
			q.pending[i].from--
		}
	}
}

type sendState struct {
	req HostRequest
}

// unexMsg is the NIC-side record of an unexpected message (§V-C
// unexpectedQ entry).
type unexMsg struct {
	pkt    network.Packet
	bufLen int
}

// postedRecv is the NIC-side record of a posted receive.
type postedRecv struct {
	req HostRequest
}

// NIC is one simulated network interface.
type NIC struct {
	eng *sim.Engine
	cfg Config
	cpu params.CPU

	mem   *memsys.Hierarchy
	net   *network.Network
	ep    *network.Endpoint
	dmaRx *dma.Engine
	dmaTx *dma.Engine

	// HostQ carries requests from the host library; pushes must go
	// through SubmitRequest so the host-bus latency is modelled.
	HostQ *sim.FIFO[HostRequest]
	kick  *sim.Signal

	posted mirrorQueue
	unexp  mirrorQueue

	// fab is the sharded matching fabric (fabric.go), non-nil when
	// Config.MatchShards > 1 with UseALPU; alpuQueues enumerates every
	// device-backed queue (the fabric shards or posted, plus unexp) for
	// the maintenance loops. matchLat is the live posted-side match
	// latency histogram, in 64 ns units, recorded for every configuration.
	fab        *fabricState
	alpuQueues []*mirrorQueue
	matchLat   *telemetry.Histogram

	pendingSends map[uint64]*sendState

	entryAlloc addrAlloc
	purgeKey   uint64

	// Complete is invoked when a host request finishes on the NIC side at
	// simulated time `at` (before the host-bus delay). For receives, st
	// carries the matched envelope and size (MPI_Status). Set by the host
	// layer before traffic flows.
	Complete func(reqID uint64, at sim.Time, st CompletionStatus)

	// rendezvous receive statuses keyed by request id, captured when the
	// RTS matches (the DATA packet no longer carries the envelope).
	rndvStatus map[uint64]CompletionStatus

	stats Stats

	// Telemetry: the registry all counters live in (never nil — a private
	// one is created when Config.Telemetry is unset), plus the optional
	// tracer and phase recorder.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	phases *telemetry.Phases
	causal *telemetry.Causal

	// Reliability-engine state (reliability.go). The counters live in the
	// registry under "nic<ID>/rel/..." (rel holds the cached handles).
	relPeers     []*relPeer
	rel          relCounters
	rtoInit      sim.Time
	rtoMax       sim.Time
	admittedHdrs int // EAGER/RTS headers admitted but not yet processed

	// Recoverable protocol errors (errors.go): counted per operation in
	// the registry ("nic<ID>/err/<op>") instead of panicking, with the
	// most recent kept for diagnostics.
	errTotal uint64
	lastErr  error

	// crashRng drives firmware crash injection (devfault.go); nil when
	// Config.FwCrashProb is zero.
	crashRng *fwRand

	// faultEvents counts device strikes (noteDeviceFault calls) — the
	// causal recorder compares it across a match resolution to decide
	// whether the elapsed search time belongs to resync/failover blame.
	faultEvents uint64
}

// addrAlloc is a bump allocator with LIFO reuse, approximating the
// firmware's fixed-size object pools: freed entries are reused hottest
// first, as a free list would.
type addrAlloc struct {
	next, size uint64
	free       []uint64
}

func (a *addrAlloc) get() uint64 {
	if n := len(a.free); n > 0 {
		addr := a.free[n-1]
		a.free = a.free[:n-1]
		return addr
	}
	addr := a.next
	a.next += a.size
	return addr
}

func (a *addrAlloc) put(addr uint64) { a.free = append(a.free, addr) }

// New creates a NIC bound to endpoint cfg.ID of net and starts its
// firmware process.
func New(eng *sim.Engine, cfg Config, net *network.Network) *NIC {
	if cfg.UseALPU && cfg.UseHashList {
		panic("nic: UseALPU and UseHashList are mutually exclusive")
	}
	if cfg.MatchShards > 1 && cfg.UseHashList {
		panic("nic: MatchShards and UseHashList are mutually exclusive")
	}
	if cfg.MatchShards > 1 && !cfg.UseALPU {
		panic("nic: MatchShards requires UseALPU")
	}
	if cfg.UseALPU && cfg.Cells == 0 {
		cfg.Cells = 256
	}
	cpu := params.NICCPU()
	if cfg.CPUProfile != nil {
		cpu = *cfg.CPUProfile
	}
	n := &NIC{
		eng:          eng,
		cfg:          cfg,
		cpu:          cpu,
		mem:          memsys.New(cpu, dram.New(dram.DefaultConfig())),
		net:          net,
		ep:           net.Endpoint(cfg.ID),
		dmaRx:        dma.New(fmt.Sprintf("nic%d.rx", cfg.ID), 0, 0),
		dmaTx:        dma.New(fmt.Sprintf("nic%d.tx", cfg.ID), 0, 0),
		HostQ:        sim.NewFIFO[HostRequest](eng, fmt.Sprintf("nic%d.hostq", cfg.ID), 0),
		kick:         sim.NewSignal(eng),
		pendingSends: make(map[uint64]*sendState),
		rndvStatus:   make(map[uint64]CompletionStatus),
		entryAlloc:   addrAlloc{next: 0x1_0000, size: params.QueueEntryFullBytes},
		reg:          cfg.Telemetry,
		tracer:       cfg.Tracer,
		phases:       cfg.Phases,
		causal:       cfg.Causal,
	}
	if n.reg == nil {
		n.reg = telemetry.NewRegistry()
	}
	if cfg.FwCrashProb > 0 {
		seed := cfg.FwCrashSeed
		if seed == 0 {
			seed = uint64(cfg.ID) + 1
		}
		n.crashRng = newFwRand(seed)
	}
	if n.tracer != nil {
		n.tracer.NameProcess(cfg.ID, fmt.Sprintf("nic%d", cfg.ID))
		n.tracer.NameThread(cfg.ID, tidFirmware, "firmware")
		if cfg.UseALPU {
			if cfg.MatchShards > 1 {
				for i := 0; i < cfg.MatchShards; i++ {
					n.tracer.NameThread(cfg.ID, tidShardBase+i, fmt.Sprintf("posted-alpu%d", i))
				}
			} else {
				n.tracer.NameThread(cfg.ID, tidPostedALPU, "posted-alpu")
			}
			n.tracer.NameThread(cfg.ID, tidUnexpALPU, "unexp-alpu")
		}
		if cfg.Reliable {
			n.tracer.NameThread(cfg.ID, tidReliability, "reliability")
		}
	}
	if cfg.RxQDepth > 0 {
		// Replace the endpoint's unbounded Rx FIFO with a bounded one: real
		// NIC receive buffers are finite, and the reliability engine's
		// admission control needs a full condition to push back against.
		n.ep.RxQ = sim.NewFIFO[network.Packet](eng, fmt.Sprintf("net%d.rx", cfg.ID), cfg.RxQDepth)
	}
	n.posted = newMirrorQueue("posted", cfg)
	n.unexp = newMirrorQueue("unexp", cfg)
	n.posted.depths = n.reg.Histogram(fmt.Sprintf("nic%d/posted/match_depth", cfg.ID))
	n.unexp.depths = n.reg.Histogram(fmt.Sprintf("nic%d/unexp/match_depth", cfg.ID))
	n.matchLat = n.reg.Histogram(fmt.Sprintf("nic%d/posted/match_lat64", cfg.ID))
	if cfg.UseALPU {
		if cfg.MatchShards > 1 {
			n.fab = &fabricState{cache: cache.New(dispatchCacheGeometry())}
			for i := 0; i < cfg.MatchShards; i++ {
				q := newMirrorQueue(fmt.Sprintf("posted%d", i), cfg)
				q.over = match.NewHashList()
				q.stale = make(map[uint32]bool)
				q.depths = n.reg.Histogram(fmt.Sprintf("nic%d/%s/match_depth", cfg.ID, q.name))
				q.dev = alpu.MustDevice(eng, fmt.Sprintf("nic%d.palpu%d", cfg.ID, i), n.shardConfig(i))
				n.fab.shards = append(n.fab.shards, &q)
			}
			n.alpuQueues = append(n.alpuQueues, n.fab.shards...)
		} else {
			n.posted.dev = alpu.MustDevice(eng, fmt.Sprintf("nic%d.palpu", cfg.ID), n.alpuConfig(alpu.PostedReceives, tidPostedALPU))
			n.alpuQueues = append(n.alpuQueues, &n.posted)
		}
		n.unexp.dev = alpu.MustDevice(eng, fmt.Sprintf("nic%d.ualpu", cfg.ID), n.alpuConfig(alpu.UnexpectedMessages, tidUnexpALPU))
		n.alpuQueues = append(n.alpuQueues, &n.unexp)
	}
	// The hardware path of Fig. 1: every matchable header is replicated
	// into the posted-receive ALPU's header FIFO at delivery time, before
	// the firmware sees the packet — once the unit is engaged (§IV-C:
	// delivery of duplicate information is disabled until initialised).
	// Under the fabric the header replicates only into its owner shard;
	// the shard index is a pure function of the header, so the hardware
	// needs no firmware state to route.
	n.ep.Arrived = n.kick
	n.ep.OnDeliver = func(pkt network.Packet) {
		if pkt.Kind != network.Eager && pkt.Kind != network.RTS {
			return
		}
		q := &n.posted
		if n.fab != nil {
			q = n.fab.shards[match.ShardOf(match.Pack(pkt.Hdr), len(n.fab.shards))]
		}
		if q.engaged {
			q.dev.PushProbe(alpu.Probe{Bits: match.Pack(pkt.Hdr), Meta: pkt.Seq})
			q.probed[pkt.Seq] = true
		}
	}
	if cfg.Reliable {
		n.relInit()
	}
	n.registerProbes(cfg.Series)
	eng.Spawn(fmt.Sprintf("nic%d.fw", cfg.ID), n.firmware)
	return n
}

// registerProbes wires the NIC's time-series probes into the world's (or,
// in a partitioned world, the owning partition's) sampler. Every name is
// nic-scoped, so shard samplers union without collision. Probes read live
// NIC state, which is safe: a front poll fires on the NIC's own engine,
// after every event strictly before the tick and before any event at it.
func (n *NIC) registerProbes(sa *telemetry.Sampler) {
	if sa == nil {
		return
	}
	pre := fmt.Sprintf("nic%d", n.cfg.ID)
	sa.Probe(pre+"/posted/depth", func() int64 { return int64(n.PostedLen()) })
	sa.Probe(pre+"/unexp/depth", func() int64 { return int64(n.UnexpLen()) })
	sa.Probe(pre+"/rxq/depth", func() int64 { return int64(n.ep.RxQ.Len()) })
	sa.Probe(pre+"/hostq/depth", func() int64 { return int64(n.HostQ.Len()) })
	sa.Probe(pre+"/posted/match_lat64_p99", func() int64 {
		h := n.matchLat.Hist()
		return int64(h.Percentile(0.99))
	})
	if n.cfg.Reliable {
		sa.Probe(pre+"/rel/window", func() int64 { return int64(n.RelPending()) })
	}
	if n.fab != nil {
		for i, q := range n.fab.shards {
			q := q
			sa.Probe(fmt.Sprintf("%s/fabric/shard%d/depth", pre, i),
				func() int64 { return int64(n.queueLen(q)) })
		}
	}
}

func newMirrorQueue(name string, cfg Config) mirrorQueue {
	q := mirrorQueue{
		name:   name,
		tags:   make(map[uint32]*match.Entry),
		probed: make(map[uint64]bool),
	}
	if cfg.UseHashList {
		q.hash = match.NewHashList()
	}
	return q
}

// Trace-event thread ids within a NIC's pid track.
const (
	tidFirmware = iota
	tidPostedALPU
	tidUnexpALPU
	tidReliability
	// tidShardBase + i is fabric shard i's device track (fabric.go); the
	// offset also salts each shard's fault-stream seed, so the shards of
	// one NIC fault independently.
	tidShardBase
)

func (n *NIC) alpuConfig(v alpu.Variant, tid int) alpu.Config {
	c := alpu.DefaultConfig(v, n.cfg.Cells)
	if n.cfg.ALPUConfig != nil {
		c = *n.cfg.ALPUConfig
		c.Variant = v
		if c.Geometry.Cells == 0 {
			c.Geometry.Cells = n.cfg.Cells
		}
	}
	if n.cfg.PerCycleALPU {
		c.PerCycle = true
	}
	if n.cfg.ALPUFaults.Active() {
		f := *n.cfg.ALPUFaults
		f.Seed = f.Seed + uint64(n.cfg.ID)*0x9E3779B9 + uint64(tid)*0x85EBCA6B
		c.Faults = &f
	}
	c.Tracer = n.tracer
	c.TracePID = n.cfg.ID
	c.TraceTID = tid
	return c
}

// shardConfig builds fabric shard i's device configuration: the ordinary
// posted-receive configuration on the shard's own trace/fault stream,
// with Config.ShardFaults[i] overriding the fault model when set.
func (n *NIC) shardConfig(i int) alpu.Config {
	c := n.alpuConfig(alpu.PostedReceives, tidShardBase+i)
	if i < len(n.cfg.ShardFaults) && n.cfg.ShardFaults[i].Active() {
		f := *n.cfg.ShardFaults[i]
		f.Seed = f.Seed + uint64(n.cfg.ID)*0x9E3779B9 + uint64(tidShardBase+i)*0x85EBCA6B
		c.Faults = &f
	}
	return c
}

// Config returns the NIC configuration.
func (n *NIC) Config() Config { return n.cfg }

// Stats returns a snapshot of the firmware counters.
func (n *NIC) Stats() Stats { return n.stats }

// Registry returns the NIC's telemetry registry (the world's shared one,
// or the private registry created when none was configured).
func (n *NIC) Registry() *telemetry.Registry { return n.reg }

// ErrorsTotal reports the recoverable protocol errors recorded so far,
// across all operations.
func (n *NIC) ErrorsTotal() uint64 { return n.errTotal }

// ErrorCount reports the recoverable protocol errors recorded for one
// operation ("cts-unknown-send", "alpu-unknown-tag", ...).
func (n *NIC) ErrorCount(op string) uint64 {
	return n.reg.Counter(fmt.Sprintf("nic%d/err/%s", n.cfg.ID, op)).Get()
}

// LastError returns the most recent recoverable protocol error, or nil.
func (n *NIC) LastError() error { return n.lastErr }

// ALPUDead reports whether the named queue's unit ("posted"/"unexp", or
// a fabric shard "posted0".."postedN") has been declared dead and failed
// over to software matching.
func (n *NIC) ALPUDead(name string) bool {
	if name == "posted" {
		return n.posted.alpuDead
	}
	if name == "unexp" {
		return n.unexp.alpuDead
	}
	if n.fab != nil {
		for _, q := range n.fab.shards {
			if q.name == name {
				return q.alpuDead
			}
		}
	}
	return false
}

// FailoverCount returns one of the live failover counters ("strikes",
// "resyncs", "deaths", "shadow_rebuilds", "fw_crashes", "fw_restarts",
// "fault_responses").
func (n *NIC) FailoverCount(name string) uint64 {
	return n.reg.Counter(fmt.Sprintf("nic%d/failover/%s", n.cfg.ID, name)).Get()
}

// noteError records a recoverable protocol error: counted, retained for
// diagnostics, and the firmware carries on (true invariant violations
// still panic).
func (n *NIC) noteError(err *ProtocolError) {
	n.reg.Counter(fmt.Sprintf("nic%d/err/%s", n.cfg.ID, err.Op)).Inc()
	n.errTotal++
	n.lastErr = err
	if n.cfg.Log != nil {
		n.cfg.Log.Warn("recoverable protocol error",
			"nic", n.cfg.ID, "op", err.Op, "err", err.Error())
	}
	if n.cfg.ErrorHook != nil {
		n.cfg.ErrorHook(err)
	}
}

// PostedDepths returns a copy of the posted-receive match-depth histogram
// (how many entries sat ahead of each match — the refs [8]/[9] metric).
// Under the fabric the per-shard histograms are merged.
func (n *NIC) PostedDepths() *trace.Histogram {
	if n.fab != nil {
		var h trace.Histogram
		for _, q := range n.fab.shards {
			qh := q.depths.Hist()
			h.Merge(&qh)
		}
		return &h
	}
	h := n.posted.depths.Hist()
	return &h
}

// MatchLatencies returns a copy of the posted-side match latency
// histogram; one sample per incoming header, in units of 64 ns.
func (n *NIC) MatchLatencies() *trace.Histogram {
	h := n.matchLat.Hist()
	return &h
}

// UnexpDepths returns a copy of the unexpected-queue match-depth histogram.
func (n *NIC) UnexpDepths() *trace.Histogram {
	h := n.unexp.depths.Hist()
	return &h
}

// PeakPostedLen reports the posted queue's high-water mark (fabric-wide
// under sharding).
func (n *NIC) PeakPostedLen() int {
	if n.fab != nil {
		return n.fab.peakPosted
	}
	return n.posted.peakLen
}

// PeakUnexpLen reports the unexpected queue's high-water mark.
func (n *NIC) PeakUnexpLen() int { return n.unexp.peakLen }

// Mem exposes the NIC memory hierarchy (tests and reports).
func (n *NIC) Mem() *memsys.Hierarchy { return n.mem }

// RxDrops reports packets lost to a full (bounded) Rx FIFO. A reliable
// NIC refuses admission before the FIFO overflows, so this stays zero
// there; raw bounded endpoints count their losses here.
func (n *NIC) RxDrops() uint64 { return n.ep.RxQ.Drops() }

// PostedALPU returns the posted-receive unit, or nil (always nil under
// the fabric — use ShardALPU).
func (n *NIC) PostedALPU() *alpu.Device { return n.posted.dev }

// ShardALPU returns fabric shard i's posted-receive unit, or nil when the
// fabric is off or i is out of range.
func (n *NIC) ShardALPU(i int) *alpu.Device {
	if n.fab == nil || i < 0 || i >= len(n.fab.shards) {
		return nil
	}
	return n.fab.shards[i].dev
}

// MatchShardCount reports the number of fabric shards (0 = no fabric).
func (n *NIC) MatchShardCount() int {
	if n.fab == nil {
		return 0
	}
	return len(n.fab.shards)
}

// UnexpALPU returns the unexpected-message unit, or nil.
func (n *NIC) UnexpALPU() *alpu.Device { return n.unexp.dev }

// PostedLen reports the current posted receive queue length (summed over
// the shards under the fabric; a broadcast wildcard counts once per
// shard, like the copies it posts).
func (n *NIC) PostedLen() int {
	if n.fab != nil {
		total := 0
		for _, q := range n.fab.shards {
			total += n.queueLen(q)
		}
		return total
	}
	return n.queueLen(&n.posted)
}

// UnexpLen reports the current unexpected queue length.
func (n *NIC) UnexpLen() int { return n.queueLen(&n.unexp) }

func (n *NIC) queueLen(q *mirrorQueue) int {
	if q.hash != nil {
		return q.hash.Len()
	}
	return q.list.Len()
}

// SubmitRequest delivers a host request to the NIC after the host-bus
// latency. It is called from the host side (any goroutine-context that is
// currently executing in the simulation).
func (n *NIC) SubmitRequest(req HostRequest) {
	n.eng.Schedule(params.HostBusLatency, func() {
		// Fig. 1: new posted receives are replicated to the unexpected
		// ALPU by hardware as they arrive at the NIC (when engaged).
		if req.Kind == ReqRecv && n.unexp.engaged {
			b, m := match.PackRecv(req.Recv)
			n.unexp.dev.PushProbe(alpu.Probe{Bits: b, Mask: m, Meta: req.ID})
			n.unexp.probed[req.ID] = true
		}
		n.HostQ.Push(req)
		n.kick.Raise()
	})
}

// CompletionStatus is the receive-side completion envelope (the model's
// MPI_Status): who the matched message came from, its tag, and its size.
type CompletionStatus struct {
	Valid  bool
	Source int32
	Tag    int32
	Size   int
}

// statusOf builds a CompletionStatus from a matched envelope.
func statusOf(hdr match.Header, size int) CompletionStatus {
	return CompletionStatus{Valid: true, Source: hdr.Source, Tag: hdr.Tag, Size: size}
}

// complete reports request completion to the host layer.
func (n *NIC) complete(reqID uint64, at sim.Time, st CompletionStatus) {
	n.stats.Completions++
	if n.tracer != nil {
		n.tracer.Instant(n.cfg.ID, tidFirmware, "mpi", "complete", n.eng.Now())
	}
	if n.Complete != nil {
		n.Complete(reqID, at, st)
	}
}

// stampCompletion records the Complete and HostDone phase stamps for a
// matched message, mirroring the host layer's completion timing exactly:
// the completion lands no earlier than the firmware's current time, and
// the host observes it one host-bus crossing later (host.Request.DoneAt).
func (n *NIC) stampCompletion(hdr match.Header, done sim.Time) {
	if n.phases == nil && n.causal == nil {
		return
	}
	at := done
	if now := n.eng.Now(); at < now {
		at = now
	}
	key := uint64(match.Pack(hdr))
	n.phases.Stamp(key, telemetry.StampComplete, at)
	n.phases.Stamp(key, telemetry.StampHostDone, at+params.HostBusLatency)
	n.causal.Stamp(key, telemetry.StampComplete, at)
	n.causal.Stamp(key, telemetry.StampHostDone, at+params.HostBusLatency)
}

// PublishTelemetry harvests the NIC's struct counters into the registry
// under "nic<ID>/...". Live counters (reliability, protocol errors,
// match-depth histograms) already reside there; this publishes the
// snapshot-time view of everything else. Idempotent.
func (n *NIC) PublishTelemetry() {
	pre := fmt.Sprintf("nic%d", n.cfg.ID)
	s := n.stats
	n.reg.Counter(pre + "/fw/packets_handled").Set(s.PacketsHandled)
	n.reg.Counter(pre + "/fw/host_reqs_handled").Set(s.HostReqsHandled)
	n.reg.Counter(pre + "/fw/entries_traversed").Set(s.EntriesTraversed)
	n.reg.Counter(pre + "/fw/posted_matches").Set(s.PostedMatches)
	n.reg.Counter(pre + "/fw/unexpected").Set(s.Unexpected)
	n.reg.Counter(pre + "/fw/unexp_matches").Set(s.UnexpMatches)
	n.reg.Counter(pre + "/fw/completions").Set(s.Completions)
	n.reg.Counter(pre + "/fw/insert_episodes").Set(s.InsertEpisodes)
	n.reg.Counter(pre + "/fw/alpu_posted_hits").Set(s.ALPUPostedHits)
	n.reg.Counter(pre + "/fw/alpu_posted_misses").Set(s.ALPUPostedMisses)
	n.reg.Counter(pre + "/fw/alpu_unexp_hits").Set(s.ALPUUnexpHits)
	n.reg.Counter(pre + "/fw/alpu_unexp_misses").Set(s.ALPUUnexpMisses)
	n.reg.Counter(pre + "/fw/alpu_inserts").Set(s.ALPUInserts)
	n.reg.Counter(pre + "/fw/alpu_purges").Set(s.ALPUPurges)
	n.reg.Counter(pre + "/rx/drops").Set(n.ep.RxQ.Drops())
	n.reg.Gauge(pre + "/posted/peak_len").SetMax(int64(n.PeakPostedLen()))
	n.reg.Gauge(pre + "/unexp/peak_len").SetMax(int64(n.unexp.peakLen))
	n.reg.Gauge(pre + "/posted/len").Set(int64(n.PostedLen()))
	n.reg.Gauge(pre + "/unexp/len").Set(int64(n.queueLen(&n.unexp)))
	n.reg.Gauge(pre + "/rxq/len").Set(int64(n.ep.RxQ.Len()))
	n.reg.Gauge(pre + "/hostq/len").Set(int64(n.HostQ.Len()))
	if n.posted.dev != nil {
		n.posted.dev.Publish(n.reg, pre+"/alpu/posted")
	}
	if n.unexp.dev != nil {
		n.unexp.dev.Publish(n.reg, pre+"/alpu/unexp")
	}
	if n.fab != nil {
		n.publishFabric(pre)
	}
	if n.cfg.Reliable {
		n.reg.Gauge(pre + "/rel/pending").Set(int64(n.RelPending()))
	}
	if n.devFaultsOn() {
		dead := int64(0)
		for _, q := range n.alpuQueues {
			if q.alpuDead {
				dead++
			}
		}
		n.reg.Gauge(pre + "/failover/dead_units").Set(dead)
	}
}
