// The sharded matching fabric: N posted-receive ALPU instances in front
// of hash-assisted software overflow, with a hot-entry dispatch cache.
//
// A single ALPU caps at its cell count (§VI-A: 128/256); past that every
// match pays a linear software walk of the overflow suffix. The fabric
// hashes posted receives by (context, source) — match.ShardOf — across
// Config.MatchShards units, so each shard mirrors its own list prefix
// into its own device and keeps its own overflow in a match.HashList.
// Entries promote from overflow into cells through the ordinary insert
// episodes and demote back on resync, so the invariant is simply:
//
//	shard.over == shard.list[inALPU:]   (while the shard's device lives)
//
// Ordering correctness needs no cross-shard merge: an incoming header
// hashes to exactly one owner shard, an exact receive for that (context,
// source) lives in that shard, and a wildcard-source receive is broadcast
// — one copy per shard, appended under the same firmware step — so every
// candidate for any given probe lives in the probe's owner shard, in
// posting order. The per-shard oldest match is therefore the globally
// oldest match (§II). When a wildcard's copy matches in one shard, the
// siblings are purged: overflow copies unlink directly, prefix copies via
// an INVALIDATE command to the shard's device, with the tag quarantined
// in shard.stale until the device is provably quiet (a match response
// generated before the invalidate may still be in flight; consuming such
// a stale success falls back to a software resolution). See DESIGN.md
// §5.12 for the full argument.
package nic

import (
	"fmt"

	"alpusim/internal/alpu"
	"alpusim/internal/cache"
	"alpusim/internal/match"
	"alpusim/internal/params"
	"alpusim/internal/proc"
	"alpusim/internal/trace"
)

// fabricState is the NIC-side fabric bookkeeping. All mutation happens on
// the firmware process (the dispatch cache included), so fabric behaviour
// is deterministic at any partition count.
type fabricState struct {
	shards []*mirrorQueue
	// cache is the hot-entry dispatch cache: repeat (context, source)
	// lookups skip the hash-and-table hop and cost a single cycle.
	cache *cache.Cache

	wildBroadcasts uint64 // ANY_SOURCE receives replicated to every shard
	wildPurges     uint64 // completed wildcards whose siblings were purged
	staleWildHits  uint64 // device successes consumed after invalidation

	peakPosted int             // fabric-wide posted-queue high-water mark
	shardDepth trace.Histogram // owner-shard depth sampled at each post
}

// wildGroup ties the broadcast copies of one ANY_SOURCE receive together:
// copies[i] is the entry appended to shard i. Whichever copy matches
// first completes the receive; fabricResolve purges the rest.
type wildGroup struct {
	pr     *postedRecv
	copies []*match.Entry
}

// dispatchCacheGeometry is the hot-entry dispatch cache build point: 64
// lines of one 8-byte dispatch slot each, 4-way LRU — small enough to be
// a corner of NIC SRAM, large enough to hold the working set of a
// heavily-communicating tenant mix.
func dispatchCacheGeometry() cache.Config {
	return cache.Config{Size: 512, LineSize: 8, Assoc: 4, Policy: cache.LRU}
}

// dispatchRegionBase is where the shard-dispatch table lives in NIC
// memory for the cost model (the hash region sits at 0x800_0000).
const dispatchRegionBase = 0x900_0000

func dispatchAddr(bits match.Bits) uint64 {
	return dispatchRegionBase + (uint64(match.DispatchKey(bits))>>params.TagFieldBits%4096)*8
}

// dispatchShard routes a match word to its owner shard, charging the
// hot-entry cache: a hit is a single cycle, a miss pays the table load.
// The shard index itself is always computed functionally — the cache
// affects cost, never routing.
func (n *NIC) dispatchShard(e *proc.Engine, bits match.Bits) *mirrorQueue {
	q := n.fab.shards[match.ShardOf(bits, len(n.fab.shards))]
	if n.fab.cache.Access(dispatchAddr(bits), false).Hit {
		e.Cycles(1)
	} else {
		e.Cycles(4)
		e.Load(dispatchAddr(bits), 8)
	}
	return q
}

// fabricPost appends a posted receive into the fabric: exact receives go
// to their owner shard through the dispatch cache; ANY_SOURCE receives
// broadcast one copy per shard under this same firmware step, so the
// copies are adjacent in every shard's posting order.
func (n *NIC) fabricPost(e *proc.Engine, b, m match.Bits, pr *postedRecv) {
	if match.WildcardSource(m) {
		n.fab.wildBroadcasts++
		wg := &wildGroup{pr: pr}
		for _, q := range n.fab.shards {
			wg.copies = append(wg.copies, n.appendShard(e, q, b, m, wg))
		}
	} else {
		n.appendShard(e, n.dispatchShard(e, b), b, m, pr)
	}
	total := 0
	for _, q := range n.fab.shards {
		total += n.queueLen(q)
	}
	if total > n.fab.peakPosted {
		n.fab.peakPosted = total
	}
}

// appendShard is appendEntry plus the shard's overflow-hash mirror: a new
// entry starts in the unloaded suffix, so it is inserted into the
// overflow hash too (promotion into cells happens in updateALPU). A
// failed-over shard has over == nil and appends into its hash shadow
// through the ordinary appendEntry path.
func (n *NIC) appendShard(e *proc.Engine, q *mirrorQueue, b, m match.Bits, req any) *match.Entry {
	entry := n.appendEntry(e, q, b, m, req)
	if q.over != nil {
		q.over.InsertOrdered(entry)
		e.Cycles(4)
		e.Store(hashBucketAddr(b), 8)
	}
	n.fab.shardDepth.Add(n.queueLen(q))
	return entry
}

// searchShard finds the oldest match in a fabric shard: a linear walk of
// the device-mirrored prefix (cost-identical to searchList over the same
// range), then the overflow hash. Prefix entries are strictly older than
// overflow entries, so prefix-first preserves §II ordering. For queues
// without an overflow hash this is exactly searchList.
func (n *NIC) searchShard(e *proc.Engine, q *mirrorQueue, bits, mask match.Bits, from int) int {
	if q.over == nil {
		return n.searchList(e, q, bits, mask, from)
	}
	limit := q.inALPU
	if l := q.list.Len(); limit > l {
		limit = l
	}
	for i := from; i < limit; i++ {
		entry := q.list.At(i)
		e.LoadOverlapped(entry.Addr, params.QueueEntryBytes, params.TraverseCyclesPerEntry)
		e.Prefetch(entry.Addr+uint64(params.QueueEntryBytes), params.QueueEntryFullBytes-params.QueueEntryBytes, false)
		n.stats.EntriesTraversed++
		if match.Matches(entry.Bits, entry.Mask, bits, mask) {
			return i
		}
	}
	before := q.over.SearchSteps
	entry := q.over.FindFirst(bits, mask)
	steps := q.over.SearchSteps - before
	for s := uint64(0); s < steps; s++ {
		e.Cycles(4)
		e.Load(hashBucketAddr(bits+match.Bits(s)), 8)
	}
	n.stats.EntriesTraversed += steps
	if entry == nil {
		return -1
	}
	idx := q.list.IndexOf(entry)
	return idx
}

// searchRemoveShard is searchShard plus unlinking, the fabric counterpart
// of searchRemoveList (and exactly it when the queue has no overflow).
func (n *NIC) searchRemoveShard(e *proc.Engine, q *mirrorQueue, bits, mask match.Bits) *match.Entry {
	if q.over == nil {
		return n.searchRemoveList(e, q, bits, mask, 0)
	}
	idx := n.searchShard(e, q, bits, mask, 0)
	if idx < 0 {
		return nil
	}
	q.depths.Add(idx)
	entry := q.list.At(idx)
	inOver := idx >= q.inALPU
	e.Cycles(8)
	q.removeAt(idx)
	if inOver {
		q.dropOverflow(entry)
	}
	return entry
}

// dropOverflow keeps a fabric shard's overflow hash exact after a list
// removal of an overflow-resident entry; harmless no-op elsewhere.
func (q *mirrorQueue) dropOverflow(entry *match.Entry) {
	if q.over != nil {
		q.over.Remove(entry)
	}
}

// fabricResolve turns a matched posted entry into its receive record,
// purging the sibling copies first when the entry is one of a wildcard
// group's broadcasts. The sibling addrs are freed here; the matched
// copy's addr is freed by the caller like any entry.
func (n *NIC) fabricResolve(e *proc.Engine, entry *match.Entry) *postedRecv {
	wg, ok := entry.Req.(*wildGroup)
	if !ok {
		return entry.Req.(*postedRecv)
	}
	n.fab.wildPurges++
	for i, c := range wg.copies {
		if c == entry {
			continue
		}
		n.purgeSibling(e, n.fab.shards[i], c)
		n.entryAlloc.put(c.Addr)
	}
	return wg.pr
}

// purgeSibling removes one unmatched copy of a completed wildcard from
// its shard. An overflow copy unlinks from list and hash; a copy inside
// the device-mirrored prefix additionally needs its cell cleared — an
// INVALIDATE command — and its tag quarantined in q.stale until the
// device is quiet, because a match response generated before the
// invalidate may still be in flight carrying that tag.
func (n *NIC) purgeSibling(e *proc.Engine, q *mirrorQueue, c *match.Entry) {
	if q.hash != nil {
		// Failed-over shard: the hash shadow is the only live structure.
		e.Cycles(12)
		q.hash.Remove(c)
		return
	}
	idx := q.list.IndexOf(c)
	if idx < 0 {
		panic(fmt.Sprintf("nic%d: %s lost a wildcard copy", n.cfg.ID, q.name))
	}
	if idx < q.inALPU {
		for t, en := range q.tags {
			if en == c {
				delete(q.tags, t)
				q.stale[t] = true
				e.BusTransaction(params.ALPUCommandCycles)
				n.pushCommand(e, q, alpu.Command{Op: alpu.OpInvalidate, Tag: t})
				break
			}
		}
		q.inALPU--
	} else {
		q.dropOverflow(c)
		e.Cycles(4)
	}
	e.Cycles(8)
	q.removeAt(idx)
}

// publishFabric harvests the fabric counters into the registry under
// "nic<ID>/fabric/...": the dispatch-cache hit/miss split, wildcard
// broadcast/purge activity, per-shard occupancy and overflow state, and
// the overflow promotion/demotion totals. Idempotent like the rest of
// PublishTelemetry.
func (n *NIC) publishFabric(pre string) {
	var promo, demo uint64
	for i, q := range n.fab.shards {
		sp := fmt.Sprintf("%s/fabric/shard%d", pre, i)
		q.dev.Publish(n.reg, fmt.Sprintf("%s/alpu/posted%d", pre, i))
		n.reg.Gauge(sp + "/peak_len").SetMax(int64(q.peakLen))
		n.reg.Gauge(sp + "/len").Set(int64(n.queueLen(q)))
		over := 0
		if q.over != nil {
			over = q.over.Len()
		}
		n.reg.Gauge(sp + "/overflow").Set(int64(over))
		n.reg.Counter(sp + "/promotions").Set(q.promotions)
		n.reg.Counter(sp + "/demotions").Set(q.demotions)
		promo += q.promotions
		demo += q.demotions
	}
	n.reg.Counter(pre + "/fabric/cache_hits").Set(n.fab.cache.Hits())
	n.reg.Counter(pre + "/fabric/cache_misses").Set(n.fab.cache.Misses())
	n.reg.Counter(pre + "/fabric/wild_broadcasts").Set(n.fab.wildBroadcasts)
	n.reg.Counter(pre + "/fabric/wild_purges").Set(n.fab.wildPurges)
	n.reg.Counter(pre + "/fabric/stale_wild_hits").Set(n.fab.staleWildHits)
	n.reg.Counter(pre + "/fabric/overflow_promotions").Set(promo)
	n.reg.Counter(pre + "/fabric/overflow_demotions").Set(demo)
	n.reg.Gauge(pre + "/fabric/peak_posted").SetMax(int64(n.fab.peakPosted))
	n.reg.Histogram(pre + "/fabric/shard_depth").Set(n.fab.shardDepth)
}

// fabricMaintain runs at the firmware loop top: retire stale-tag
// quarantines once their shard is provably quiet. A stale success can
// only surface through a probe outstanding when the invalidate was
// issued; with no probes outstanding and no responses pending, none can
// exist, and the tags become safe to reallocate.
func (n *NIC) fabricMaintain() {
	for _, q := range n.fab.shards {
		if len(q.stale) == 0 {
			continue
		}
		if len(q.probed) == 0 && len(q.pending) == 0 &&
			q.dev.Headers.Len() == 0 && q.dev.Results.Len() == 0 {
			for t := range q.stale {
				delete(q.stale, t)
			}
		}
	}
}
