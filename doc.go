// Package alpusim is a from-scratch Go reproduction of "A Hardware
// Acceleration Unit for MPI Queue Processing" (Brightwell, Hemmert,
// Murphy, Rodrigues, Underwood — IPDPS/IPPS 2005): the associative list
// processing unit (ALPU) for MPI matching, the NIC/host simulation
// environment it was evaluated in, the prototype MPI implementation, the
// two queue benchmarks behind Figures 5 and 6, and an FPGA area/timing
// estimator that regenerates Tables IV and V.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// the runnable surfaces are:
//
//   - cmd/alpusim:    rerun any experiment (figures, tables, anchors)
//   - cmd/fpgareport: Tables IV/V next to the published values
//   - cmd/queueprobe: drive the ALPU device model interactively
//   - examples/...:   quickstart, preposted, unexpected, alpudirect
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation section, plus ablations for the design choices
// the paper discusses (block size, use threshold, hash-table queues,
// compaction policy, insert batching).
package alpusim
